(* SQLite case study (§7.1): Table 7 (syscall counts/latency), Table 8
   (CPU breakdown + wall clock), Fig. 4 (txn latency vs size), Fig. 5
   (TATP throughput vs database size). *)

open Env
module Db = Msnap_sqlite.Db
module Backend_wal = Msnap_sqlite.Backend_wal
module Backend_msnap = Msnap_sqlite.Backend_msnap
module Dbbench = Msnap_workloads.Workloads.Dbbench
module Tatp = Msnap_workloads.Workloads.Tatp

type backend = Wal | Ms

(* dbbench draws keys below [nkeys] and TATP subscribers scale up to the
   same bound, so every [Db.key_of_int] the drivers ever pass is one of
   these precomputed strings (immutable — shared across cells/domains).
   Out-of-range keys fall back to the codec. *)
let max_key = 100_000
let key_table = Array.init max_key Db.key_of_int

let key_of_int i =
  if i >= 0 && i < max_key then Array.unsafe_get key_table i
  else Db.key_of_int i

let backend_name = function Wal -> "memsnap" | Ms -> "" (* unused *)
let _ = backend_name

(* Both paths register end-of-run disposal for the pager's page cache
   (one pooled 4 KiB buffer per page ever touched — the dominant pooled
   working set of the SQLite experiments) so the next run on this
   domain reuses them instead of allocating fresh. *)
let open_db backend =
  match backend with
  | Wal ->
    let _, fs = mk_fs Fs.Ffs in
    (* The paper's database (1M keys) dwarfs the OS buffer cache; keep the
       same relationship at our scaled size so checkpoint IO stays cold. *)
    Fs.set_cache_capacity fs 128;
    let w = Backend_wal.create fs ~db_name:"bench.db" () in
    let db = Db.open_db (Backend_wal.backend w) in
    on_dispose (fun () ->
        Msnap_sqlite.Pager.dispose (Db.pager db);
        Backend_wal.dispose w);
    db
  | Ms ->
    let _, k, _, _ = mk_msnap () in
    let db =
      Db.open_db
        (Backend_msnap.backend
           (Backend_msnap.create k ~db_name:"bench.db" ~max_pages:65536))
    in
    on_dispose (fun () -> Msnap_sqlite.Pager.dispose (Db.pager db));
    db

type dbbench_result = {
  wall_ns : int;
  txn_hist : Histogram.t;
  calls : (string * float * int) list; (* name, mean ns, count *)
  cpu : (string * float) list;
}

let run_dbbench ~backend ~pattern ~txn_bytes ~total_writes () =
  Sched.run (fun () ->
      Metrics.reset ();
      let db = open_db backend in
      let tbl = Db.create_table db "kv" in
      let wl = Dbbench.create ~nkeys:max_key ~txn_bytes ~pattern () in
      let rng = Rng.create 11 in
      let hist = Histogram.create () in
      let written = ref 0 in
      let t0 = Sched.now () in
      while !written < total_writes do
        let pairs = Dbbench.next_txn wl rng in
        let s = Sched.now () in
        Db.with_write_txn db (fun () ->
            List.iter
              (fun (k, v) -> Db.put tbl ~key:(key_of_int k) ~value:v)
              pairs);
        Histogram.add hist (Sched.now () - s);
        written := !written + List.length pairs
      done;
      {
        wall_ns = Sched.now () - t0;
        txn_hist = hist;
        calls =
          List.map metric_row
            [ Probe.db_memsnap; Probe.db_fsync; Probe.db_write; Probe.db_read ];
        cpu = cpu_percent (Sched.account_report ());
      })

let total_writes = 30_000

let table7 () =
  section "Table 7: persistence-related calls, dbbench (SQLite)";
  let t =
    Tbl.create
      ~title:(Printf.sprintf "per-call latency / total calls (%d KV writes)" total_writes)
      ~headers:
        [ "Txn size"; "memsnap us"; "ops"; "fsync us"; "ops"; "write us";
          "ops"; "read us"; "ops" ]
  in
  (* One cell per dbbench run, declared grid-first so the pool overlaps
     them; forced in the same order the serial loop ran. *)
  let mk_cells pattern =
    List.map
      (fun txn_kib ->
        let ms =
          cell (fun () ->
              run_dbbench ~backend:Ms ~pattern ~txn_bytes:(Size.kib txn_kib)
                ~total_writes ())
        in
        let wal =
          cell (fun () ->
              run_dbbench ~backend:Wal ~pattern ~txn_bytes:(Size.kib txn_kib)
                ~total_writes ())
        in
        (txn_kib, ms, wal))
      [ 4; 64; 1024 ]
  in
  let random = mk_cells `Random in
  let seq = mk_cells `Seq in
  let emit cells label =
    Tbl.rule t;
    Tbl.row t [ label ];
    List.iter
      (fun (txn_kib, ms, wal) ->
        let ms = force ms in
        let wal = force wal in
        let find r name =
          match List.find_opt (fun (n, _, _) -> n = name) r.calls with
          | Some (_, mean, count) -> (mean, count)
          | None -> (0.0, 0)
        in
        let m_mean, m_count = find ms "memsnap" in
        let f_mean, f_count = find wal "fsync" in
        let w_mean, w_count = find wal "write" in
        let r_mean, r_count = find wal "read" in
        Tbl.row t
          [
            Size.pp (Size.kib txn_kib);
            Tbl.us (int_of_float m_mean); Tbl.kcount m_count;
            Tbl.us (int_of_float f_mean); Tbl.kcount f_count;
            Tbl.us (int_of_float w_mean); Tbl.kcount w_count;
            Tbl.us (int_of_float r_mean); Tbl.kcount r_count;
          ])
      cells
  in
  emit random "Random IO";
  emit seq "Sequential IO";
  Tbl.note t "paper 4K random: memsnap 152us/63K, fsync 1137us/67K, write 6.7us/7584K, read 2.9us/2847K";
  print_table t

let table8 () =
  section "Table 8: CPU usage and dbbench wall time (SQLite)";
  let t =
    Tbl.create ~title:"CPU breakdown (4 KiB transactions)"
      ~headers:[ "Bucket"; "baseline %"; "memsnap %" ]
  in
  let mk_cells pattern =
    let wal =
      cell (fun () ->
          run_dbbench ~backend:Wal ~pattern ~txn_bytes:(Size.kib 4)
            ~total_writes ())
    in
    let ms =
      cell (fun () ->
          run_dbbench ~backend:Ms ~pattern ~txn_bytes:(Size.kib 4)
            ~total_writes ())
    in
    (wal, ms)
  in
  let random = mk_cells `Random in
  let seq = mk_cells `Seq in
  let emit (wal, ms) label =
    let wal = force wal in
    let ms = force ms in
    let pct r name =
      match List.assoc_opt name r.cpu with Some v -> Tbl.pct v | None -> "-"
    in
    Tbl.rule t;
    Tbl.row t [ label ];
    Tbl.row t [ "userspace"; pct wal "user"; pct ms "user" ];
    Tbl.row t [ "fsync"; pct wal "fsync"; pct ms "fsync" ];
    Tbl.row t [ "write"; pct wal "write"; pct ms "write" ];
    Tbl.row t [ "read"; pct wal "read"; pct ms "read" ];
    Tbl.row t [ "memsnap"; pct wal "memsnap"; pct ms "memsnap" ];
    Tbl.row t [ "memsnap flush"; pct wal "memsnap flush"; pct ms "memsnap flush" ];
    Tbl.row t [ "page faults"; pct wal "page faults"; pct ms "page faults" ];
    Tbl.row t
      [ "wall clock";
        Printf.sprintf "%.2f s" (float_of_int wal.wall_ns /. 1e9);
        Printf.sprintf "%.2f s" (float_of_int ms.wall_ns /. 1e9) ]
  in
  emit random "Random IO";
  emit seq "Sequential IO";
  Tbl.note t "paper: memsnap 2x-5x faster wall clock; baseline CPU dominated by write+fsync";
  print_table t

let fig4 () =
  section "Figure 4: transaction latency vs size (SQLite dbbench)";
  let t =
    Tbl.create ~title:"per-transaction latency (us)"
      ~headers:
        [ "Txn size"; "pattern"; "baseline avg"; "baseline p99";
          "memsnap avg"; "memsnap p99" ]
  in
  let rows =
    List.concat_map
      (fun pattern ->
        List.map
          (fun txn_kib ->
            let wal =
              cell (fun () ->
                  run_dbbench ~backend:Wal ~pattern
                    ~txn_bytes:(Size.kib txn_kib) ~total_writes ())
            in
            let ms =
              cell (fun () ->
                  run_dbbench ~backend:Ms ~pattern
                    ~txn_bytes:(Size.kib txn_kib) ~total_writes ())
            in
            (pattern, txn_kib, wal, ms))
          [ 4; 16; 64; 256; 1024 ])
      [ `Random; `Seq ]
  in
  List.iter
    (fun (pattern, txn_kib, wal, ms) ->
      let wal = force wal in
      let ms = force ms in
      Tbl.row t
        [
          Size.pp (Size.kib txn_kib);
          (match pattern with `Random -> "random" | `Seq -> "seq");
          Tbl.us_short (int_of_float (Histogram.mean wal.txn_hist));
          Tbl.us_short (Histogram.percentile wal.txn_hist 99.0);
          Tbl.us_short (int_of_float (Histogram.mean ms.txn_hist));
          Tbl.us_short (Histogram.percentile ms.txn_hist 99.0);
        ])
    rows;
  Tbl.note t "paper: memsnap ~4x lower latency, low variance; baseline skewed by checkpoints";
  print_table t

(* --- TATP (Fig. 5) --- *)

(* Row payloads hoisted out of the op loop: the filler constants are
   interned once and the bounded subscriber rows render at most once
   per domain ("sub%08d:<80 x 's'>", byte-identical to the sprintf). *)
let sub_filler = String.make 80 's'

let subscriber_row =
  Intern.memo ~max:max_key (fun s ->
      let b = Keyfmt.scratch () in
      Keyfmt.lit b "sub";
      Keyfmt.dec b ~width:8 s;
      Keyfmt.char b ':';
      Keyfmt.lit b sub_filler;
      Keyfmt.str b)

let v_access = String.make 40 'a'
let v_facility = String.make 40 'f'
let v_facility' = String.make 40 'F'
let v_forwarding = String.make 24 'c'

let tatp_setup db ~subscribers =
  let sub = Db.create_table db "subscriber" in
  let ai = Db.create_table db "access_info" in
  let sf = Db.create_table db "special_facility" in
  let cf = Db.create_table db "call_forwarding" in
  let batch = 256 in
  let i = ref 0 in
  while !i < subscribers do
    let hi = min (subscribers - 1) (!i + batch - 1) in
    Db.with_write_txn db (fun () ->
        for s = !i to hi do
          Db.put sub ~key:(key_of_int s) ~value:(subscriber_row s);
          Db.put ai ~key:(key_of_int s) ~value:v_access;
          Db.put sf ~key:(key_of_int s) ~value:v_facility
        done);
    i := hi + 1
  done;
  (sub, ai, sf, cf)

let tatp_run db (sub, ai, sf, cf) ~subscribers ~ops =
  let rng = Rng.create 13 in
  let t0 = Sched.now () in
  for _ = 1 to ops do
    match Tatp.next ~subscribers rng with
    | Tatp.Get_subscriber_data s -> ignore (Db.get sub (key_of_int s))
    | Tatp.Get_new_destination s -> ignore (Db.get cf (key_of_int s))
    | Tatp.Get_access_data s -> ignore (Db.get ai (key_of_int s))
    | Tatp.Update_subscriber_data s ->
      Db.with_write_txn db (fun () ->
          Db.put sf ~key:(key_of_int s) ~value:v_facility')
    | Tatp.Update_location s ->
      Db.with_write_txn db (fun () ->
          Db.put sub ~key:(key_of_int s) ~value:(subscriber_row s))
    | Tatp.Insert_call_forwarding s ->
      Db.with_write_txn db (fun () ->
          Db.put cf ~key:(key_of_int s) ~value:v_forwarding)
    | Tatp.Delete_call_forwarding s ->
      Db.with_write_txn db (fun () -> ignore (Db.delete cf (key_of_int s)))
  done;
  float_of_int ops /. (float_of_int (Sched.now () - t0) /. 1e9)

let fig5 () =
  section "Figure 5: TATP throughput vs database size (SQLite)";
  let t =
    Tbl.create ~title:"TATP transactions/second"
      ~headers:[ "Records"; "baseline tps"; "memsnap tps"; "memsnap/baseline" ]
  in
  let ops = 8_000 in
  let rows =
    List.map
      (fun subscribers ->
        let run backend =
          cell (fun () ->
              Sched.run (fun () ->
                  let db = open_db backend in
                  let tables = tatp_setup db ~subscribers in
                  tatp_run db tables ~subscribers ~ops))
        in
        let base = run Wal in
        let ms = run Ms in
        (subscribers, base, ms))
      [ 1_000; 10_000; 100_000 ]
  in
  List.iter
    (fun (subscribers, base, ms) ->
      let base = force base in
      let ms = force ms in
      Tbl.row t
        [
          string_of_int subscribers;
          Printf.sprintf "%.0f" base;
          Printf.sprintf "%.0f" ms;
          Printf.sprintf "%.2fx" (ms /. base);
        ])
    rows;
  Tbl.note t "paper: baseline loses 63% of throughput from 1K to 1M records; memsnap only 23%";
  Tbl.note t "record counts scaled 1K-100K (paper 1K-1M) to fit the simulated machine";
  print_table t
