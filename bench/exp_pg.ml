(* PostgreSQL case study (§7.3): Fig. 6 — TPC-C throughput, disk write
   throughput and IOPS for the four storage variants. *)

open Env
module Storage = Msnap_pg.Storage
module Pg = Msnap_pg.Pg
module Tpcc = Msnap_workloads.Workloads.Tpcc

let warehouses = 4
let connections = 8
let txns = 3_000

(* The TPC-C keyspaces are bounded by the scale constants above, so all
   four sprintf key builders become precomputed tables (immutable
   strings, shared across domains); only the ever-growing order /
   order-line / history keys render per insert, into per-domain scratch
   (one allocation: the key itself). Byte-identical to the sprintf
   grammars they replace. *)
let k_wh =
  let t =
    Keyfmt.table warehouses (fun b w ->
        Keyfmt.char b 'w';
        Keyfmt.dec b ~width:4 w)
  in
  fun w -> Array.unsafe_get t w

let k_dist =
  let t =
    Keyfmt.table
      (warehouses * Tpcc.districts_per_warehouse)
      (fun b i ->
        Keyfmt.char b 'w';
        Keyfmt.dec b ~width:4 (i / Tpcc.districts_per_warehouse);
        Keyfmt.lit b "-d";
        Keyfmt.dec b ~width:2 (i mod Tpcc.districts_per_warehouse))
  in
  fun w d -> Array.unsafe_get t ((w * Tpcc.districts_per_warehouse) + d)

let k_cust =
  let per_wh = Tpcc.districts_per_warehouse * Tpcc.customers_per_district in
  let t =
    Keyfmt.table (warehouses * per_wh) (fun b i ->
        Keyfmt.char b 'w';
        Keyfmt.dec b ~width:4 (i / per_wh);
        Keyfmt.lit b "-d";
        Keyfmt.dec b ~width:2 (i mod per_wh / Tpcc.customers_per_district);
        Keyfmt.lit b "-c";
        Keyfmt.dec b ~width:5 (i mod Tpcc.customers_per_district))
  in
  fun w d c ->
    Array.unsafe_get t
      ((w * per_wh) + (d * Tpcc.customers_per_district) + c)

let k_stock =
  let t =
    Keyfmt.table (warehouses * Tpcc.items) (fun b i ->
        Keyfmt.char b 'w';
        Keyfmt.dec b ~width:4 (i / Tpcc.items);
        Keyfmt.lit b "-i";
        Keyfmt.dec b ~width:6 (i mod Tpcc.items))
  in
  fun w i -> Array.unsafe_get t ((w * Tpcc.items) + i)

(* "o%09d-l%02d" *)
let k_order_line oid l =
  let b = Keyfmt.scratch () in
  Keyfmt.char b 'o';
  Keyfmt.dec b ~width:9 oid;
  Keyfmt.lit b "-l";
  Keyfmt.dec b ~width:2 l;
  Keyfmt.str b

(* "%c%09d" *)
let k_counter c id =
  let b = Keyfmt.scratch () in
  Keyfmt.char b c;
  Keyfmt.dec b ~width:9 id;
  Keyfmt.str b

let load db =
  Pg.with_txn db (fun txn ->
      for w = 0 to warehouses - 1 do
        Pg.insert db txn ~table:"warehouse" ~key:(k_wh w) "0";
        for i = 0 to Tpcc.items - 1 do
          Pg.insert db txn ~table:"stock" ~key:(k_stock w i) "100"
        done
      done);
  for w = 0 to warehouses - 1 do
    for d = 0 to Tpcc.districts_per_warehouse - 1 do
      Pg.with_txn db (fun txn ->
          Pg.insert db txn ~table:"district" ~key:(k_dist w d) "1";
          for c = 0 to Tpcc.customers_per_district - 1 do
            Pg.insert db txn ~table:"customer" ~key:(k_cust w d c) "0"
          done)
    done
  done

let parse_int ctx v =
  match int_of_string_opt v with
  | Some i -> i
  | None ->
    failwith
      (Printf.sprintf "corrupt %s: %S (len %d)" ctx v (String.length v))

let incr_field v = string_of_int (parse_int "incr" v + 1)

let run_txn db rng txn_counter =
  match Tpcc.next ~warehouses (Rng.split rng) with
  | Tpcc.New_order { w; d; c; items } ->
    (* Acquire stock row locks in item order: the global lock ordering
       that keeps concurrent new-order transactions deadlock-free. *)
    let items =
      List.sort_uniq (fun (a, _) (b, _) -> compare a b) items
    in
    Pg.with_txn db (fun txn ->
        ignore (Pg.lookup db txn ~table:"warehouse" ~key:(k_wh w));
        ignore (Pg.update_with db txn ~table:"district" ~key:(k_dist w d) incr_field);
        ignore (Pg.lookup db txn ~table:"customer" ~key:(k_cust w d c));
        let oid = !txn_counter in
        incr txn_counter;
        List.iteri
          (fun i (item, qty) ->
            ignore
              (Pg.update_with db txn ~table:"stock" ~key:(k_stock w item)
                 (fun v -> string_of_int (max 10 (parse_int "stock" v - qty))));
            let line =
              let b = Keyfmt.scratch () in
              Keyfmt.lit b "item=";
              Keyfmt.dec b ~width:0 item;
              Keyfmt.lit b " qty=";
              Keyfmt.dec b ~width:0 qty;
              Keyfmt.str b
            in
            Pg.insert db txn ~table:"order_line" ~key:(k_order_line oid i)
              line)
          items;
        let order =
          let b = Keyfmt.scratch () in
          Keyfmt.lit b "w=";
          Keyfmt.dec b ~width:0 w;
          Keyfmt.lit b " d=";
          Keyfmt.dec b ~width:0 d;
          Keyfmt.lit b " c=";
          Keyfmt.dec b ~width:0 c;
          Keyfmt.str b
        in
        Pg.insert db txn ~table:"orders" ~key:(k_counter 'o' oid) order)
  | Tpcc.Payment { w; d; c; amount } ->
    Pg.with_txn db (fun txn ->
        ignore (Pg.update_with db txn ~table:"warehouse" ~key:(k_wh w) incr_field);
        ignore (Pg.update_with db txn ~table:"district" ~key:(k_dist w d) incr_field);
        ignore
          (Pg.update_with db txn ~table:"customer" ~key:(k_cust w d c)
             (fun v -> string_of_int (parse_int "customer" v + amount)));
        let hid = !txn_counter in
        incr txn_counter;
        Pg.insert db txn ~table:"history" ~key:(k_counter 'h' hid)
          (string_of_int amount))
  | Tpcc.Order_status { w; d; c } ->
    Pg.with_txn db (fun txn ->
        ignore (Pg.lookup db txn ~table:"customer" ~key:(k_cust w d c)))
  | Tpcc.Delivery { w; carrier } ->
    Pg.with_txn db (fun txn ->
        for d = 0 to 2 do
          ignore
            (Pg.update_with db txn ~table:"district" ~key:(k_dist w d)
               (fun v -> string_of_int (parse_int "district" v + carrier)))
        done)
  | Tpcc.Stock_level { w; d = _; threshold } ->
    Pg.with_txn db (fun txn ->
        for i = 0 to 9 do
          ignore (Pg.lookup db txn ~table:"stock" ~key:(k_stock w (i * 7)));
          ignore threshold
        done)

(* Thread names, hoisted out of the spawn loop. *)
let conn_names =
  Keyfmt.table connections (fun b c ->
      Keyfmt.lit b "conn";
      Keyfmt.dec b ~width:0 c)

type result = { tps : float; mb_per_s : float; iops : float }

let run_variant mk =
  Sched.run (fun () ->
      Metrics.reset ();
      let dev, st = mk () in
      let db = Pg.open_db st in
      load db;
      Device.reset_stats dev;
      let t0 = Sched.now () in
      let txn_counter = ref 0 in
      let ts =
        List.init connections (fun c ->
            Sched.spawn ~name:(Array.unsafe_get conn_names c) (fun () ->
                let rng = Rng.create (7_000 + c) in
                for _ = 1 to txns / connections do
                  run_txn db rng txn_counter
                done))
      in
      List.iter Sched.join ts;
      let wall_s = float_of_int (Sched.now () - t0) /. 1e9 in
      let stats = Device.stats dev in
      {
        tps = float_of_int txns /. wall_s;
        mb_per_s = float_of_int stats.Disk.bytes_written /. 1e6 /. wall_s;
        iops = float_of_int stats.Disk.writes /. wall_s;
      })

let fig6 () =
  section "Figure 6: PostgreSQL TPC-C across storage variants";
  let variants =
    [
      ( "ffs",
        fun () ->
          let dev, fs = mk_fs Fs.Ffs in
          (dev, Storage.ffs fs ()) );
      ( "ffs-mmap",
        fun () ->
          let dev, fs = mk_fs Fs.Ffs in
          let phys = Phys.create () in
          on_dispose (fun () -> Phys.dispose phys);
          (dev, Storage.ffs_mmap fs (Aspace.create phys) ()) );
      ( "ffs-mmap-bd",
        fun () ->
          let dev, fs = mk_fs Fs.Ffs in
          let phys = Phys.create () in
          on_dispose (fun () -> Phys.dispose phys);
          (dev, Storage.ffs_mmap_bufdirect fs (Aspace.create phys) ()) );
      ( "memsnap",
        fun () ->
          let dev, k, _, _ = mk_msnap () in
          (dev, Storage.memsnap k) );
    ]
  in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf "TPC-C, %d warehouses (scaled), %d connections, %d txns"
           warehouses connections txns)
      ~headers:[ "Variant"; "tps"; "vs ffs"; "disk MB/s"; "IOPS" ]
  in
  (* One cell per storage variant: the four TPC-C runs are independent
     simulations, so they fan out over the -j pool. Forced in list
     order, so the vs-ffs baseline and the row order match the serial
     run exactly. *)
  let cells =
    List.map
      (fun (label, mk) ->
        ( label,
          cell (fun () ->
              Printf.eprintf "  [fig6] %s...\n%!" label;
              run_variant mk) ))
      variants
  in
  let base_tps = ref 0.0 in
  List.iter
    (fun (label, c) ->
      let r = force c in
      if label = "ffs" then base_tps := r.tps;
      Tbl.row t
        [
          label;
          Printf.sprintf "%.0f" r.tps;
          Printf.sprintf "%+.1f%%" (100.0 *. ((r.tps /. !base_tps) -. 1.0));
          Printf.sprintf "%.1f" r.mb_per_s;
          Printf.sprintf "%.0f" r.iops;
        ])
    cells;
  Tbl.note t "paper: mmap variants lose ~25% tps; memsnap gains 1.5% with ~80% less disk write throughput and +26% IOPS";
  print_table t
