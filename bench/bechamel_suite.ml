(* Wall-clock microbenchmarks of the core data structures, via Bechamel.
   These complement the simulated-time experiment tables: they measure the
   real cost of the reproduction's own hot paths (radix COW updates,
   skip-list inserts, B-tree inserts, histogram recording). *)

module Radix = Msnap_objstore.Radix
module Histogram = Msnap_util.Histogram
module Rng = Msnap_util.Rng
open Bechamel
open Toolkit

let test_histogram =
  Test.make ~name:"histogram.add"
    (Staged.stage @@ fun () ->
     let h = Histogram.create () in
     for i = 1 to 1000 do
       Histogram.add h (i * 977)
     done)

let test_rng =
  Test.make ~name:"rng.splitmix64"
    (Staged.stage
    @@ fun () ->
    let rng = Rng.create 1 in
    let acc = ref 0L in
    for _ = 1 to 1000 do
      acc := Int64.add !acc (Rng.bits64 rng)
    done;
    !acc)

let test_radix =
  Test.make ~name:"radix.update_batch (64 pages)"
    (Staged.stage @@ fun () ->
     let nodes = Hashtbl.create 64 in
     let next = ref 1 in
     let alloc n =
       let l = List.init n (fun i -> !next + i) in
       next := !next + n;
       l
     in
     let read_node b = Hashtbl.find nodes b in
     let r =
       Radix.update_batch ~read_node ~alloc ~root:0 ~height:0
         (List.init 64 (fun i -> (i * 97, 10_000 + i)))
     in
     List.iter (fun (b, n) -> Hashtbl.replace nodes b n) r.Radix.node_writes)

let test_zipf =
  Test.make ~name:"dist.zipf sample"
    (Staged.stage @@ fun () ->
     let d = Msnap_util.Dist.zipf 100_000 in
     let rng = Rng.create 7 in
     let acc = ref 0 in
     for _ = 1 to 1000 do
       acc := !acc + Msnap_util.Dist.sample d rng
     done;
     !acc)

let run () =
  Env.emit "\n=== Bechamel micro-suite (wall clock) ===\n";
  let tests = [ test_histogram; test_rng; test_radix; test_zipf ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Env.printf "  %-32s %12.1f ns/run\n" name est
          | _ -> Env.printf "  %-32s (no estimate)\n" name)
        ols)
    tests;
  Env.emit "\n"
